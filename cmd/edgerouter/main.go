// Command edgerouter fronts a set of edged replicas with a stateless
// consistent-hash router: each session id is placed on one replica by
// rendezvous hashing and every request for it is forwarded there.
// Membership changes (PUT /admin/replicas) migrate only the sessions
// whose owner moved, via the edged snapshot/restore endpoints, so warm
// solver state travels with the session. See internal/route and
// DESIGN.md §7g.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"edgealloc/internal/route"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errw io.Writer) int {
	fs := flag.NewFlagSet("edgerouter", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr     = fs.String("addr", "127.0.0.1:8090", "listen address")
		replicas = fs.String("replicas", "", "comma-separated edged base URLs (e.g. http://127.0.0.1:8081,http://127.0.0.1:8082)")
		timeout  = fs.Duration("forward-timeout", 2*time.Minute, "per-request deadline for forwarded calls (cover the slowest slot solve)")
		logJSON  = fs.Bool("log-json", false, "emit JSON logs instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	members := strings.Split(*replicas, ",")
	var nonEmpty []string
	for _, m := range members {
		if strings.TrimSpace(m) != "" {
			nonEmpty = append(nonEmpty, m)
		}
	}
	if len(nonEmpty) == 0 {
		fmt.Fprintln(errw, "edgerouter: -replicas requires at least one edged base URL")
		return 2
	}

	var handler slog.Handler = slog.NewTextHandler(errw, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(errw, nil)
	}
	log := slog.New(handler)

	rt, err := route.New(route.Config{
		Replicas: nonEmpty,
		Client:   &http.Client{Timeout: *timeout},
		Logger:   log,
	})
	if err != nil {
		fmt.Fprintln(errw, "edgerouter:", err)
		return 2
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("edgerouter listening", "addr", *addr, "replicas", rt.Replicas())

	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(errw, "http shutdown:", err)
		return 1
	}
	return 0
}
