package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
		errs string // substring required on stderr
	}{
		{"bad flag", []string{"-nope"}, 2, "-nope"},
		{"non-numeric users", []string{"-users", "many"}, 2, "invalid"},
		{"extra args", []string{"taxi"}, 2, "unexpected arguments"},
		{"unknown model", []string{"-model", "teleport"}, 1, "unknown model"},
		{"unknown format", []string{"-format", "xml", "-users", "2", "-horizon", "2"}, 1, "unknown format"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if got := run(tt.args, &stdout, &stderr); got != tt.want {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tt.args, got, tt.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.errs) {
				t.Errorf("stderr %q missing %q", stderr.String(), tt.errs)
			}
		})
	}
}

func TestRunSummary(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-users", "3", "-horizon", "4", "-seed", "5"}, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr %q", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{"model=taxi users=3 horizon=4 seed=5", "churn rate", "attachment frequency"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary %q missing %q", out, want)
		}
	}
}

func TestRunCSV(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-model", "walk", "-users", "2", "-horizon", "3", "-format", "csv"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr %q", got, stderr.String())
	}
	lines := strings.Split(strings.TrimSpace(stdout.String()), "\n")
	if lines[0] != "slot,user,station,station_name,access_km" {
		t.Fatalf("header = %q", lines[0])
	}
	// 3 slots × 2 users data rows after the header.
	if got := len(lines) - 1; got != 6 {
		t.Errorf("data rows = %d, want 6", got)
	}
	for i, l := range lines[1:] {
		if fields := strings.Split(l, ","); len(fields) != 5 {
			t.Errorf("row %d = %q: %d fields, want 5", i, l, len(fields))
		}
	}
}

func TestRunChurnModel(t *testing.T) {
	var stdout, stderr bytes.Buffer
	args := []string{"-model", "churn", "-users", "10", "-horizon", "21", "-churn", "0.2"}
	if got := run(args, &stdout, &stderr); got != 0 {
		t.Fatalf("exit %d, stderr %q", got, stderr.String())
	}
	// ⌈0.2·10⌉ = 2 movers per slot over 10 users → exactly 0.2.
	if !strings.Contains(stdout.String(), "churn rate: 0.2000") {
		t.Errorf("summary %q missing exact churn rate 0.2000", stdout.String())
	}
	if got := run([]string{"-model", "churn", "-churn", "1.5"}, &stdout, &stderr); got != 1 {
		t.Errorf("out-of-range churn rate: exit %d, want 1", got)
	}
}

func TestBuildTraceDeterministic(t *testing.T) {
	a, err := buildTrace("taxi", 4, 5, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := buildTrace("taxi", 4, 5, 9, 0)
	if err != nil {
		t.Fatal(err)
	}
	if a.J != 4 || a.T != 5 {
		t.Fatalf("trace is %d users × %d slots, want 4×5", a.J, a.T)
	}
	for tt := range a.Attach {
		for j := range a.Attach[tt] {
			if a.Attach[tt][j] != b.Attach[tt][j] {
				t.Fatalf("slot %d user %d: %d != %d for equal seeds",
					tt, j, a.Attach[tt][j], b.Attach[tt][j])
			}
		}
	}
}
