// Command tracegen generates and inspects the mobility traces of the
// evaluation: the synthetic Rome taxi model (the CRAWDAD-dataset
// substitute) and the §V-D random walk on the metro graph.
//
// Usage:
//
//	tracegen -model taxi -users 50 -horizon 60            # summary
//	tracegen -model walk -users 20 -horizon 30 -format csv > trace.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"math/rand"

	"edgealloc/internal/mobility"
)

func main() {
	var (
		modelName = flag.String("model", "taxi", "mobility model: taxi or walk")
		users     = flag.Int("users", 50, "number of users")
		horizon   = flag.Int("horizon", 60, "number of one-minute slots")
		seed      = flag.Int64("seed", 1, "random seed")
		format    = flag.String("format", "summary", "output: summary or csv")
	)
	flag.Parse()

	tr, err := buildTrace(*modelName, *users, *horizon, *seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}

	switch *format {
	case "csv":
		fmt.Println("slot,user,station,station_name,access_km")
		for t := 0; t < tr.T; t++ {
			for j := 0; j < tr.J; j++ {
				s := tr.Attach[t][j]
				fmt.Printf("%d,%d,%d,%s,%.4f\n",
					t, j, s, mobility.RomeStations[s].Name, tr.AccessKm[t][j])
			}
		}
	case "summary":
		fmt.Printf("model=%s users=%d horizon=%d seed=%d\n", *modelName, tr.J, tr.T, *seed)
		fmt.Printf("churn rate: %.4f cloud switches per user-slot\n", tr.ChurnRate())
		fmt.Println("attachment frequency (capacity is distributed proportionally):")
		freq := tr.AttachFrequency(len(mobility.RomeStations))
		for i, f := range freq {
			bar := ""
			for n := 0; n < int(f*200); n++ {
				bar += "#"
			}
			fmt.Printf("  %-18s %6.3f %s\n", mobility.RomeStations[i].Name, f, bar)
		}
	default:
		fmt.Fprintf(os.Stderr, "tracegen: unknown format %q\n", *format)
		os.Exit(1)
	}
}

func buildTrace(model string, users, horizon int, seed int64) (*mobility.Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	switch model {
	case "taxi":
		return mobility.Taxi(mobility.TaxiConfig{Users: users, Horizon: horizon},
			mobility.StationPoints(), rng)
	case "walk":
		return mobility.RandomWalk(mobility.RomeMetroAdjacency(), users, horizon, rng)
	default:
		return nil, fmt.Errorf("unknown model %q (want taxi or walk)", model)
	}
}
