// Command tracegen generates and inspects the mobility traces of the
// evaluation: the synthetic Rome taxi model (the CRAWDAD-dataset
// substitute) and the §V-D random walk on the metro graph.
//
// Usage:
//
//	tracegen -model taxi -users 50 -horizon 60            # summary
//	tracegen -model walk -users 20 -horizon 30 -format csv > trace.csv
//	tracegen -model churn -users 100 -churn 0.05          # exact 5% churn
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"math/rand"

	"edgealloc/internal/mobility"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable body of main: it parses args, builds the requested
// trace, and renders it to stdout, returning the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracegen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		modelName = fs.String("model", "taxi", "mobility model: taxi, walk, or churn")
		users     = fs.Int("users", 50, "number of users")
		horizon   = fs.Int("horizon", 60, "number of one-minute slots")
		seed      = fs.Int64("seed", 1, "random seed")
		churn     = fs.Float64("churn", 0.05, "exact per-slot switch fraction for -model churn")
		format    = fs.String("format", "summary", "output: summary or csv")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "tracegen: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	tr, err := buildTrace(*modelName, *users, *horizon, *seed, *churn)
	if err != nil {
		fmt.Fprintf(stderr, "tracegen: %v\n", err)
		return 1
	}

	switch *format {
	case "csv":
		fmt.Fprintln(stdout, "slot,user,station,station_name,access_km")
		for t := 0; t < tr.T; t++ {
			for j := 0; j < tr.J; j++ {
				s := tr.Attach[t][j]
				fmt.Fprintf(stdout, "%d,%d,%d,%s,%.4f\n",
					t, j, s, mobility.RomeStations[s].Name, tr.AccessKm[t][j])
			}
		}
	case "summary":
		fmt.Fprintf(stdout, "model=%s users=%d horizon=%d seed=%d\n", *modelName, tr.J, tr.T, *seed)
		fmt.Fprintf(stdout, "churn rate: %.4f cloud switches per user-slot\n", tr.ChurnRate())
		fmt.Fprintln(stdout, "attachment frequency (capacity is distributed proportionally):")
		freq := tr.AttachFrequency(len(mobility.RomeStations))
		for i, f := range freq {
			bar := ""
			for n := 0; n < int(f*200); n++ {
				bar += "#"
			}
			fmt.Fprintf(stdout, "  %-18s %6.3f %s\n", mobility.RomeStations[i].Name, f, bar)
		}
	default:
		fmt.Fprintf(stderr, "tracegen: unknown format %q\n", *format)
		return 1
	}
	return 0
}

func buildTrace(model string, users, horizon int, seed int64, churn float64) (*mobility.Trace, error) {
	rng := rand.New(rand.NewSource(seed))
	switch model {
	case "taxi":
		return mobility.Taxi(mobility.TaxiConfig{Users: users, Horizon: horizon},
			mobility.StationPoints(), rng)
	case "walk":
		return mobility.RandomWalk(mobility.RomeMetroAdjacency(), users, horizon, rng)
	case "churn":
		return mobility.Churn(mobility.ChurnConfig{Users: users, Horizon: horizon,
			Stations: len(mobility.RomeStations), Rate: churn}, rng)
	default:
		return nil, fmt.Errorf("unknown model %q (want taxi, walk, or churn)", model)
	}
}
