package main

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"edgealloc/internal/core"
	"edgealloc/internal/solver/shardrpc"
	"edgealloc/internal/telemetry"
)

func TestRunExitCodes(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want int
		errs string // substring required on stderr
	}{
		{"bad flag", []string{"-nope"}, 2, "-nope"},
		{"positional args", []string{"extra"}, 2, "unexpected arguments"},
		{"non-duration drain", []string{"-drain-wait", "soon"}, 2, "invalid"},
		{"unlistenable addr", []string{"-addr", "256.256.256.256:99999"}, 1, "listener failed"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			var stderr bytes.Buffer
			if got := run(tt.args, &stderr); got != tt.want {
				t.Fatalf("run(%v) = %d, want %d (stderr %q)", tt.args, got, tt.want, stderr.String())
			}
			if !strings.Contains(stderr.String(), tt.errs) {
				t.Errorf("stderr %q missing %q", stderr.String(), tt.errs)
			}
		})
	}
}

// TestMuxSurface drives the assembled worker mux end to end: health and
// metrics respond, the shard endpoints host a block, and the hosted
// count shows up on both probes.
func TestMuxSurface(t *testing.T) {
	host := core.NewShardHost()
	srv := httptest.NewServer(newMux(host, telemetry.NewRegistry()))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(b)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok blocks=0") {
		t.Fatalf("GET /healthz = %d %q", code, body)
	}

	c := shardrpc.NewClient(srv.URL, shardrpc.ClientOptions{})
	spec := &shardrpc.BlockSpec{
		ID: "blk", NI: 2, NJ: 1, Eps2: 0.01,
		RowPtr: []int{0, 1, 2}, Cols: []int{0, 0},
		Coef: []float64{1, 2}, Prev: []float64{0.5, 0.5},
		MgFac: []float64{1, 1}, Warm: []float64{0.5, 0.5},
		Theta: []float64{0}, Demand: []float64{1},
	}
	if err := c.BeginSlot(context.Background(), spec); err != nil {
		t.Fatalf("begin-slot through the mux: %v", err)
	}
	resp, err := c.Solve(context.Background(), "blk", 0, 0, 4, []float64{0.5, 0.5})
	if err != nil {
		t.Fatalf("solve through the mux: %v", err)
	}
	if len(resp.Totals) != 2 {
		t.Fatalf("solve returned %d totals, want 2", len(resp.Totals))
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok blocks=1") {
		t.Fatalf("GET /healthz after hosting = %d %q", code, body)
	}
	if code, body := get("/metrics"); code != http.StatusOK ||
		!strings.Contains(body, "edgealloc_shardworker_blocks 1") {
		t.Fatalf("GET /metrics = %d %q", code, body)
	}
}
