// Command edgeshard is the shard worker: it hosts shard blocks pushed by
// coordinators (edgesim, edgebench, or edged running with -shards and
// -shard-workers) and runs their consensus x-steps over the shardrpc
// HTTP/JSON protocol (see internal/solver/shardrpc and DESIGN.md §7h).
// Workers are stateless across slots — every slot begins with a full
// spec push — so a worker can be killed and restarted at any time; the
// coordinator replays the warm state and the run continues.
//
// Usage:
//
//	edgeshard -addr 127.0.0.1:9711
//	edgesim -fig 2 -shards 4 -shard-workers http://127.0.0.1:9711
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"edgealloc/internal/core"
	"edgealloc/internal/solver/shardrpc"
	"edgealloc/internal/telemetry"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, errw io.Writer) int {
	fs := flag.NewFlagSet("edgeshard", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		addr      = fs.String("addr", "127.0.0.1:9711", "listen address")
		drainWait = fs.Duration("drain-wait", 10*time.Second, "shutdown grace for in-flight solves")
		logJSON   = fs.Bool("log-json", false, "emit JSON logs instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(errw, "edgeshard: unexpected arguments: %v\n", fs.Args())
		return 2
	}

	var handler slog.Handler = slog.NewTextHandler(errw, nil)
	if *logJSON {
		handler = slog.NewJSONHandler(errw, nil)
	}
	log := slog.New(handler)

	registry := telemetry.NewRegistry()
	host := core.NewShardHost()
	mux := newMux(host, registry)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	log.Info("edgeshard listening", "addr", *addr)

	select {
	case err := <-errc:
		log.Error("listener failed", "err", err)
		return 1
	case <-ctx.Done():
	}

	log.Info("shutting down: draining in-flight solves", "grace", *drainWait)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(errw, "http shutdown:", err)
		return 1
	}
	return 0
}

// newMux assembles the worker's HTTP surface: the shardrpc endpoints, a
// liveness probe reporting the hosted-block count, and the worker-side
// metrics in Prometheus text format.
func newMux(host *core.ShardHost, registry *telemetry.Registry) *http.ServeMux {
	blocks := registry.Gauge("edgealloc_shardworker_blocks",
		"Shard blocks currently hosted by this worker.")
	mux := http.NewServeMux()
	mux.Handle("/v1/shard/", shardrpc.NewServer(host))
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "ok blocks=%d\n", host.Blocks())
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		blocks.Set(float64(host.Blocks()))
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = registry.WritePrometheus(w)
	})
	return mux
}
