// Command edgeload is the sustained-load harness for the serving tier:
// it drives a population of concurrent allocation sessions against an
// edged daemon (or an edgerouter front) open-loop at a sweep of offered
// slot-advance rates, reporting latency SLO percentiles (p50/p99/p999)
// per rate point. With -self it spins up an in-process edged so the
// sweep is self-contained and reproducible — that is what `make
// serve-bench` records as BENCH_serve.json and what `make bench-diff`
// re-measures to gate serve latency regressions.
//
//	edgeload -self -benchjson BENCH_serve.json   # record the baseline
//	edgeload -self -benchdiff BENCH_serve.json   # regression gate
//	edgeload -base http://127.0.0.1:8090 -rates 10,20,40 -step 10s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"edgealloc/internal/loadgen"
	"edgealloc/internal/scenario"
	"edgealloc/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, outw, errw io.Writer) int {
	fs := flag.NewFlagSet("edgeload", flag.ContinueOnError)
	fs.SetOutput(errw)
	var (
		base      = fs.String("base", "", "target base URL (edged or edgerouter); empty requires -self")
		self      = fs.Bool("self", false, "spin up an in-process edged on a loopback port and drive that")
		sessions  = fs.Int("sessions", 32, "concurrent session population")
		users     = fs.Int("users", 6, "users per session instance (Rome scenario)")
		horizon   = fs.Int("horizon", 8, "slots per session before it is reborn")
		seed      = fs.Int64("seed", 1, "scenario seed")
		rates     = fs.String("rates", "10,20,40,80,160", "comma-separated offered rates (slot-advances/sec); the default spans the 1-vCPU saturation knee")
		step      = fs.Duration("step", 5*time.Second, "duration of each rate step")
		resolve   = fs.Bool("resolve", false, "treat -base as an edgerouter: resolve each session's owner via /admin/owner and dial it directly")
		benchjson = fs.String("benchjson", "", "write the sweep report to this file (BENCH_serve.json)")
		benchdiff = fs.String("benchdiff", "", "gate the sweep against this baseline report")
		threshold = fs.Float64("threshold", 0.5, "latency growth tolerated by -benchdiff (0.5 = +50%)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	fail := func(err error) int {
		fmt.Fprintln(errw, "edgeload:", err)
		return 1
	}
	if *benchjson != "" && *benchdiff != "" {
		return fail(fmt.Errorf("-benchjson and -benchdiff are mutually exclusive"))
	}
	if (*base == "") == !*self {
		return fail(fmt.Errorf("exactly one of -base or -self required"))
	}
	if *resolve && *self {
		return fail(fmt.Errorf("-resolve needs an edgerouter -base, not -self"))
	}

	rateList, err := parseRates(*rates)
	if err != nil {
		return fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	target := *base
	targetLabel := *base
	if *self {
		srv := serve.New(serve.Config{Logger: slog.New(slog.NewTextHandler(io.Discard, nil))})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fail(err)
		}
		httpSrv := &http.Server{Handler: srv.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() { _ = httpSrv.Serve(ln) }()
		defer func() {
			shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = httpSrv.Shutdown(shutCtx)
			_ = srv.Close()
		}()
		target = "http://" + ln.Addr().String()
		targetLabel = "self"
		fmt.Fprintln(errw, "edgeload: in-process edged at", target)
	}

	in, _, err := scenario.Rome(scenario.Config{Users: *users, Horizon: *horizon, Seed: *seed})
	if err != nil {
		return fail(fmt.Errorf("building instance: %w", err))
	}

	runner := &loadgen.Runner{
		Base:     target,
		Sessions: *sessions,
		Instance: in,
		Resolve:  *resolve,
	}
	if err := runner.Setup(ctx); err != nil {
		return fail(err)
	}
	defer runner.Teardown(context.Background())

	fmt.Fprintf(errw, "edgeload: %d sessions x (users=%d horizon=%d seed=%d), rates %v, %s/step\n",
		*sessions, *users, *horizon, *seed, rateList, *step)
	steps, err := runner.Sweep(ctx, rateList, *step)
	if err != nil {
		return fail(err)
	}
	loadgen.WriteStepTable(outw, steps)

	rep := &loadgen.Report{
		Target:   targetLabel,
		Sessions: *sessions,
		Users:    *users,
		Horizon:  *horizon,
		Seed:     *seed,
		Steps:    steps,
	}

	if *benchjson != "" {
		f, err := os.Create(*benchjson)
		if err != nil {
			return fail(err)
		}
		if err := loadgen.WriteReport(f, rep); err != nil {
			f.Close()
			return fail(err)
		}
		if err := f.Close(); err != nil {
			return fail(err)
		}
		fmt.Fprintln(errw, "edgeload: report written to", *benchjson)
	}

	if *benchdiff != "" {
		f, err := os.Open(*benchdiff)
		if err != nil {
			return fail(err)
		}
		baseRep, err := loadgen.ReadReport(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		regs := loadgen.DiffReports(baseRep, rep, *threshold)
		if len(regs) > 0 {
			fmt.Fprintf(errw, "edgeload: %d serve latency regression(s) past +%.0f%%:\n",
				len(regs), 100**threshold)
			for _, r := range regs {
				fmt.Fprintln(errw, "  ", r)
			}
			return 1
		}
		fmt.Fprintf(errw, "edgeload: no serve latency regressions past +%.0f%%\n", 100**threshold)
	}
	return 0
}

func parseRates(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad rate %q (want positive numbers)", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no rates given")
	}
	return out, nil
}
