// Command corpusgen regenerates the committed fuzz seed-corpus files, in
// the `go test fuzz v1` corpus format: real encoded instances (toy,
// generated, and Rome-derived) for FuzzInstanceDecode, the float64
// boundary operands for the fast-math differential fuzz
// FuzzFastMathVsStdlib, the decomposition boundary tuples for the
// sharded-path differential fuzz FuzzShardVsDense, and genuine session
// snapshots at several depths for FuzzSnapshotRoundTrip.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"edgealloc/internal/conform"
	"edgealloc/internal/core"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
	"edgealloc/internal/serve"
	"edgealloc/internal/solver/shardrpc"
)

func main() {
	writeInstanceCorpus()
	writeFastMathCorpus()
	writeShardCorpus()
	writeIncrementalCorpus()
	writeSnapshotCorpus()
	writeShardRPCCorpus()
}

// writeShardRPCCorpus pins the wire-codec boundaries of the
// shard-worker protocol's byte-stability fuzz FuzzShardRPCCodec: a full
// BlockSpec with awkward floats (ties, subnormals, shortest-repr edge
// cases the encoder must round-trip bit-exactly), the empty-block corner
// (NJ = 0, every packed slice empty), the other three document kinds,
// and near-valid envelopes that Validate must reject cleanly.
func writeShardRPCCorpus() {
	dir := filepath.Join("internal", "solver", "shardrpc", "testdata", "fuzz", "FuzzShardRPCCodec")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	spec := &shardrpc.BlockSpec{
		ID: "corpus-b0", Slot: 3, Gen: 2, NI: 2, NJ: 3, Eps2: 1e-6,
		FastMath: true,
		RowPtr:   []int{0, 2, 4},
		Cols:     []int{0, 1, 1, 2},
		Coef:     []float64{0.1 + 0.2, math.Nextafter(1, 2), -7.25, 1e-300},
		Prev:     []float64{0.5, 0, math.SmallestNonzeroFloat64, 2},
		MgFac:    []float64{1, math.Sqrt2, 3, 4},
		Warm:     []float64{0.25, 0.25, 0.5, 0},
		Theta:    []float64{0, -1.5, math.Pi},
		Demand:   []float64{1, 2, 0.75},
		Solver: shardrpc.SolverOptions{MaxOuter: 4, InnerIters: 50, Penalty: 8,
			PenaltyGrowth: 5, FeasTol: 1e-7, ObjTol: 1e-9, DualTol: 1e-6},
	}
	empty := &shardrpc.BlockSpec{
		ID: "corpus-empty", NI: 2, NJ: 0, Eps2: 0.01,
		RowPtr: []int{0, 0, 0},
		Solver: shardrpc.SolverOptions{MaxOuter: 1, InnerIters: 1, FeasTol: 1e-6},
	}
	seeds := map[string][]byte{
		"seed-spec":       shardrpc.EncodeBlockSpec(spec),
		"seed-spec-empty": shardrpc.EncodeBlockSpec(empty),
		"seed-solve-req": shardrpc.EncodeSolveRequest(&shardrpc.SolveRequest{
			ID: "corpus-b0", Slot: 3, Gen: 2, Rho: 16, Target: []float64{0.1 + 0.2, 1e-300}}),
		"seed-solve-resp": shardrpc.EncodeSolveResponse(&shardrpc.SolveResponse{
			Totals: []float64{math.Nextafter(2, 3), 0}, Outer: 3, Inner: 40}),
		"seed-state-resp": shardrpc.EncodeStateResponse(&shardrpc.StateResponse{
			X: []float64{0.5, math.SmallestNonzeroFloat64}, Theta: []float64{-0.125}}),
		"seed-bad-cols":  []byte(`{"id":"x","ni":1,"nj":1,"eps2":0.01,"rowPtr":[0,1],"cols":[9],"coef":[1],"prev":[0],"mgFac":[1],"warm":[0],"theta":[0],"demand":[1],"solver":{}}`),
		"seed-truncated": []byte(`{"id":"x","ni":2,"nj":`),
	}
	for name, body := range seeds {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeSnapshotCorpus pins the session-snapshot codec boundaries for
// FuzzSnapshotRoundTrip: genuine snapshots at depth 0 (created, never
// advanced), mid-horizon (warm iterate + duals + partial dual record),
// and full horizon (done; restore must mark the session finished), over
// both a Rome-derived and a generator instance, plus near-valid
// documents that must be rejected cleanly (wrong version, truncated
// state, id/path escapes).
func writeSnapshotCorpus() {
	dir := filepath.Join("internal", "serve", "testdata", "fuzz", "FuzzSnapshotRoundTrip")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	rome, _, err := scenario.Rome(scenario.Config{Users: 3, Horizon: 3, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	gen := conform.GenInstance(conform.GenConfig{Seed: 21, I: 3, J: 4, T: 4})
	type depth struct {
		name  string
		in    *model.Instance
		slots int
	}
	for _, d := range []depth{
		{"seed-rome-fresh", rome, 0},
		{"seed-rome-mid", rome, 2},
		{"seed-rome-done", rome, rome.T},
		{"seed-gen-mid", gen, 3},
	} {
		alg := core.NewOnlineApprox(d.in, core.Options{})
		for t := 0; t < d.slots; t++ {
			if _, err := alg.StepCtx(context.Background(), t); err != nil {
				log.Fatalf("%s: slot %d: %v", d.name, t, err)
			}
		}
		raw, err := json.Marshal(&serve.Snapshot{
			Version:  1,
			ID:       d.name,
			Instance: d.in,
			State:    alg.ExportState(),
		})
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", raw)
		if err := os.WriteFile(filepath.Join(dir, d.name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	adversarial := map[string]string{
		"seed-bad-version":  `{"version":2,"id":"x","instance":null,"state":null}`,
		"seed-no-state":     `{"version":1,"id":"x","instance":{"I":1,"J":1,"T":1}}`,
		"seed-path-escape":  `{"version":1,"id":"../escape","instance":null,"state":null}`,
		"seed-slot-overrun": `{"version":1,"id":"x","state":{"slot":99,"schedule":[]}}`,
	}
	for name, body := range adversarial {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

func writeInstanceCorpus() {
	dir := filepath.Join("internal", "model", "testdata", "fuzz", "FuzzInstanceDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	rome, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	seeds := map[string]*model.Instance{
		"seed-toy":       model.ToyExampleA(),
		"seed-rome":      rome,
		"seed-generated": conform.GenInstance(conform.GenConfig{Seed: 99, I: 4, J: 5, T: 3, Tight: true}),
	}
	for name, in := range seeds {
		var buf bytes.Buffer
		if err := model.WriteInstance(&buf, in); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf.String())
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// Adversarial fragments: near-valid JSON that must be rejected cleanly.
	adversarial := map[string]string{
		"seed-unknown-field": `{"I":1,"J":1,"T":1,"Bogus":3}`,
		"seed-huge-number":   `{"I":1,"J":1,"T":1,"Workload":[1e308],"Capacity":[1e308]}`,
		"seed-negative-dims": `{"I":-1,"J":-1,"T":-1}`,
	}
	for name, body := range adversarial {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeShardCorpus pins the decomposition boundaries of the sharded-path
// differential fuzz FuzzShardVsDense: the degenerate single-shard
// coordinator (pure overhead, must still match dense), shard counts past
// the user count (clamped to one user per shard, the raggedest split),
// the single-user/single-slot corners, and a mid-split multi-slot
// instance where consensus genuinely redistributes load. Each file is
// (seed, I, J, T, S) in the generator-clamp encoding the target spans.
func writeShardCorpus() {
	dir := filepath.Join("internal", "core", "testdata", "fuzz", "FuzzShardVsDense")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][5]int64{
		"seed-single-shard":   {41, 3, 4, 2, 1},
		"seed-user-per-shard": {11, 2, 3, 3, 9},
		"seed-single-user":    {97, 4, 1, 2, 2},
		"seed-single-slot":    {7, 3, 5, 1, 3},
		"seed-mid-split":      {20140212, 4, 5, 3, 2},
	}
	for name, v := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint(%d)\nint(%d)\nint(%d)\nint(%d)\n",
			v[0], v[1], v[2], v[3], v[4])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeIncrementalCorpus pins the churn boundaries of the incremental
// tier's differential fuzz FuzzIncrementalVsFull: 0% churn (everyone
// frozen — the soundness gate alone keeps the result honest under price
// drift), 100% churn (nothing freezes; the tier must degenerate to the
// plain candidate path), the single-user corner where one re-admission
// flips the whole program, a mid-churn multi-slot instance, and the
// tight-capacity regime where frozen flow dominates the residual RHS.
// Each file is (seed, I, J, T, churn%) in the generator-clamp encoding.
func writeIncrementalCorpus() {
	dir := filepath.Join("internal", "core", "testdata", "fuzz", "FuzzIncrementalVsFull")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][5]int64{
		"seed-zero-churn":  {41, 3, 4, 3, 0},
		"seed-full-churn":  {11, 2, 5, 3, 100},
		"seed-single-user": {97, 4, 1, 3, 50},
		"seed-mid-churn":   {7, 3, 5, 3, 35},
		"seed-tight-cap":   {20140212, 4, 5, 2, 20},
	}
	for name, v := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint(%d)\nint(%d)\nint(%d)\nint(%d)\n",
			v[0], v[1], v[2], v[3], v[4])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeFastMathCorpus pins the boundary operands of the batch fast-math
// kernels: exact powers of two (where the log reduction's exponent split
// lands on a bucket edge), the neighbors of 1 (where the log table pins
// c=1 against cancellation), subnormals and the extremes of the finite
// range, the exp over/underflow edges, and the non-finite specials. Each
// file is an (xb, yb) bit pair: xb feeds the log kernels, yb feeds exp.
func writeFastMathCorpus() {
	dir := filepath.Join("internal", "numkernel", "testdata", "fuzz", "FuzzFastMathVsStdlib")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][2]uint64{
		"seed-one":           {math.Float64bits(1), math.Float64bits(1)},
		"seed-one-next":      {math.Float64bits(math.Nextafter(1, 2)), math.Float64bits(0.5)},
		"seed-one-prev":      {math.Float64bits(math.Nextafter(1, 0)), math.Float64bits(-0.5)},
		"seed-sqrt2-over-2":  {math.Float64bits(math.Sqrt2 / 2), math.Float64bits(1)},
		"seed-pow2":          {math.Float64bits(0x1p-30), math.Float64bits(30 * math.Ln2)},
		"seed-min-subnormal": {1, math.Float64bits(-745.2)},
		"seed-min-normal":    {math.Float64bits(0x1p-1022), math.Float64bits(709.7)},
		"seed-max-float":     {math.Float64bits(math.MaxFloat64), math.Float64bits(709.8)},
		"seed-exp-edges":     {math.Float64bits(2), 0x40862e42fefa39ef}, // exp overflow edge
		"seed-exp-under":     {math.Float64bits(3), 0xc086232bdd7abcd2}, // exp underflow edge
		"seed-negative":      {math.Float64bits(-1), math.Float64bits(-0x1p-40)},
		"seed-inf-nan":       {math.Float64bits(math.Inf(1)), math.Float64bits(math.NaN())},
		"seed-neg-inf":       {math.Float64bits(math.Inf(-1)), math.Float64bits(math.Inf(-1))},
	}
	for name, bits := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\nuint64(%d)\n", bits[0], bits[1])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}
