// Command corpusgen regenerates the committed fuzz seed-corpus files for
// FuzzInstanceDecode: real encoded instances (toy, generated, and
// Rome-derived) in the `go test fuzz v1` corpus format.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

func main() {
	dir := filepath.Join("internal", "model", "testdata", "fuzz", "FuzzInstanceDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	rome, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	seeds := map[string]*model.Instance{
		"seed-toy":       model.ToyExampleA(),
		"seed-rome":      rome,
		"seed-generated": conform.GenInstance(conform.GenConfig{Seed: 99, I: 4, J: 5, T: 3, Tight: true}),
	}
	for name, in := range seeds {
		var buf bytes.Buffer
		if err := model.WriteInstance(&buf, in); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf.String())
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// Adversarial fragments: near-valid JSON that must be rejected cleanly.
	adversarial := map[string]string{
		"seed-unknown-field": `{"I":1,"J":1,"T":1,"Bogus":3}`,
		"seed-huge-number":   `{"I":1,"J":1,"T":1,"Workload":[1e308],"Capacity":[1e308]}`,
		"seed-negative-dims": `{"I":-1,"J":-1,"T":-1}`,
	}
	for name, body := range adversarial {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}
