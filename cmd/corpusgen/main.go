// Command corpusgen regenerates the committed fuzz seed-corpus files, in
// the `go test fuzz v1` corpus format: real encoded instances (toy,
// generated, and Rome-derived) for FuzzInstanceDecode, the float64
// boundary operands for the fast-math differential fuzz
// FuzzFastMathVsStdlib, and the decomposition boundary tuples for the
// sharded-path differential fuzz FuzzShardVsDense.
package main

import (
	"bytes"
	"fmt"
	"log"
	"math"
	"os"
	"path/filepath"

	"edgealloc/internal/conform"
	"edgealloc/internal/model"
	"edgealloc/internal/scenario"
)

func main() {
	writeInstanceCorpus()
	writeFastMathCorpus()
	writeShardCorpus()
	writeIncrementalCorpus()
}

func writeInstanceCorpus() {
	dir := filepath.Join("internal", "model", "testdata", "fuzz", "FuzzInstanceDecode")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	rome, _, err := scenario.Rome(scenario.Config{Users: 4, Horizon: 3, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	seeds := map[string]*model.Instance{
		"seed-toy":       model.ToyExampleA(),
		"seed-rome":      rome,
		"seed-generated": conform.GenInstance(conform.GenConfig{Seed: 99, I: 4, J: 5, T: 3, Tight: true}),
	}
	for name, in := range seeds {
		var buf bytes.Buffer
		if err := model.WriteInstance(&buf, in); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", buf.String())
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	// Adversarial fragments: near-valid JSON that must be rejected cleanly.
	adversarial := map[string]string{
		"seed-unknown-field": `{"I":1,"J":1,"T":1,"Bogus":3}`,
		"seed-huge-number":   `{"I":1,"J":1,"T":1,"Workload":[1e308],"Capacity":[1e308]}`,
		"seed-negative-dims": `{"I":-1,"J":-1,"T":-1}`,
	}
	for name, body := range adversarial {
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", body)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeShardCorpus pins the decomposition boundaries of the sharded-path
// differential fuzz FuzzShardVsDense: the degenerate single-shard
// coordinator (pure overhead, must still match dense), shard counts past
// the user count (clamped to one user per shard, the raggedest split),
// the single-user/single-slot corners, and a mid-split multi-slot
// instance where consensus genuinely redistributes load. Each file is
// (seed, I, J, T, S) in the generator-clamp encoding the target spans.
func writeShardCorpus() {
	dir := filepath.Join("internal", "core", "testdata", "fuzz", "FuzzShardVsDense")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][5]int64{
		"seed-single-shard":   {41, 3, 4, 2, 1},
		"seed-user-per-shard": {11, 2, 3, 3, 9},
		"seed-single-user":    {97, 4, 1, 2, 2},
		"seed-single-slot":    {7, 3, 5, 1, 3},
		"seed-mid-split":      {20140212, 4, 5, 3, 2},
	}
	for name, v := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint(%d)\nint(%d)\nint(%d)\nint(%d)\n",
			v[0], v[1], v[2], v[3], v[4])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeIncrementalCorpus pins the churn boundaries of the incremental
// tier's differential fuzz FuzzIncrementalVsFull: 0% churn (everyone
// frozen — the soundness gate alone keeps the result honest under price
// drift), 100% churn (nothing freezes; the tier must degenerate to the
// plain candidate path), the single-user corner where one re-admission
// flips the whole program, a mid-churn multi-slot instance, and the
// tight-capacity regime where frozen flow dominates the residual RHS.
// Each file is (seed, I, J, T, churn%) in the generator-clamp encoding.
func writeIncrementalCorpus() {
	dir := filepath.Join("internal", "core", "testdata", "fuzz", "FuzzIncrementalVsFull")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][5]int64{
		"seed-zero-churn":  {41, 3, 4, 3, 0},
		"seed-full-churn":  {11, 2, 5, 3, 100},
		"seed-single-user": {97, 4, 1, 3, 50},
		"seed-mid-churn":   {7, 3, 5, 3, 35},
		"seed-tight-cap":   {20140212, 4, 5, 2, 20},
	}
	for name, v := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nint64(%d)\nint(%d)\nint(%d)\nint(%d)\nint(%d)\n",
			v[0], v[1], v[2], v[3], v[4])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}

// writeFastMathCorpus pins the boundary operands of the batch fast-math
// kernels: exact powers of two (where the log reduction's exponent split
// lands on a bucket edge), the neighbors of 1 (where the log table pins
// c=1 against cancellation), subnormals and the extremes of the finite
// range, the exp over/underflow edges, and the non-finite specials. Each
// file is an (xb, yb) bit pair: xb feeds the log kernels, yb feeds exp.
func writeFastMathCorpus() {
	dir := filepath.Join("internal", "numkernel", "testdata", "fuzz", "FuzzFastMathVsStdlib")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatal(err)
	}
	seeds := map[string][2]uint64{
		"seed-one":           {math.Float64bits(1), math.Float64bits(1)},
		"seed-one-next":      {math.Float64bits(math.Nextafter(1, 2)), math.Float64bits(0.5)},
		"seed-one-prev":      {math.Float64bits(math.Nextafter(1, 0)), math.Float64bits(-0.5)},
		"seed-sqrt2-over-2":  {math.Float64bits(math.Sqrt2 / 2), math.Float64bits(1)},
		"seed-pow2":          {math.Float64bits(0x1p-30), math.Float64bits(30 * math.Ln2)},
		"seed-min-subnormal": {1, math.Float64bits(-745.2)},
		"seed-min-normal":    {math.Float64bits(0x1p-1022), math.Float64bits(709.7)},
		"seed-max-float":     {math.Float64bits(math.MaxFloat64), math.Float64bits(709.8)},
		"seed-exp-edges":     {math.Float64bits(2), 0x40862e42fefa39ef}, // exp overflow edge
		"seed-exp-under":     {math.Float64bits(3), 0xc086232bdd7abcd2}, // exp underflow edge
		"seed-negative":      {math.Float64bits(-1), math.Float64bits(-0x1p-40)},
		"seed-inf-nan":       {math.Float64bits(math.Inf(1)), math.Float64bits(math.NaN())},
		"seed-neg-inf":       {math.Float64bits(math.Inf(-1)), math.Float64bits(math.Inf(-1))},
	}
	for name, bits := range seeds {
		body := fmt.Sprintf("go test fuzz v1\nuint64(%d)\nuint64(%d)\n", bits[0], bits[1])
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("corpus written to", dir)
}
