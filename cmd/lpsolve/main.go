// Command lpsolve exposes the repository's dense two-phase simplex solver
// as a tiny CLI, standing in for the GLPK invocations of the paper's
// original pipeline. It reads a linear program in a simple text format
// and prints the optimal point, objective, and constraint duals.
//
// Input format (# starts a comment; whitespace-separated):
//
//	min: 1 2 3          # objective coefficients (minimization, x >= 0)
//	c: 1 1 1 >= 10      # one constraint per line: coeffs, sense, rhs
//	c: 1 -1 0 == 2
//	c: 0 1 2 <= 8
//
// Usage:
//
//	lpsolve problem.lp
//	echo 'min: 1 1
//	c: 1 2 >= 4' | lpsolve
package main

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"edgealloc/internal/solver/simplex"
)

func main() {
	var r io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fail("%v", err)
		}
		defer f.Close()
		r = f
	}
	p, err := parse(r)
	if err != nil {
		fail("parse: %v", err)
	}
	sol, err := simplex.Solve(p)
	if err != nil {
		fail("solve: %v", err)
	}
	fmt.Printf("status: %v\n", sol.Status)
	if sol.Status != simplex.Optimal {
		os.Exit(2)
	}
	fmt.Printf("objective: %.9g\n", sol.Objective)
	fmt.Printf("iterations: %d\n", sol.Iterations)
	for j, x := range sol.X {
		fmt.Printf("x[%d] = %.9g\n", j, x)
	}
	for k, y := range sol.Duals {
		fmt.Printf("dual[%d] = %.9g\n", k, y)
	}
}

func parse(r io.Reader) (*simplex.Problem, error) {
	p := &simplex.Problem{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := sc.Text()
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = text[:i]
		}
		text = strings.TrimSpace(text)
		if text == "" {
			continue
		}
		switch {
		case strings.HasPrefix(text, "min:"):
			c, err := parseFloats(strings.Fields(text[len("min:"):]))
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			p.C = c
		case strings.HasPrefix(text, "c:"):
			fields := strings.Fields(text[len("c:"):])
			if len(fields) < 3 {
				return nil, fmt.Errorf("line %d: constraint needs coeffs, sense, rhs", line)
			}
			senseTok := fields[len(fields)-2]
			var sense simplex.Sense
			switch senseTok {
			case "<=":
				sense = simplex.LE
			case ">=":
				sense = simplex.GE
			case "==", "=":
				sense = simplex.EQ
			default:
				return nil, fmt.Errorf("line %d: unknown sense %q", line, senseTok)
			}
			rhs, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				return nil, fmt.Errorf("line %d: rhs: %w", line, err)
			}
			coeffs, err := parseFloats(fields[:len(fields)-2])
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", line, err)
			}
			p.Cons = append(p.Cons, simplex.Constraint{Coeffs: coeffs, Sense: sense, RHS: rhs})
		default:
			return nil, fmt.Errorf("line %d: expected 'min:' or 'c:' prefix", line)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p.C == nil {
		return nil, fmt.Errorf("missing 'min:' objective line")
	}
	return p, nil
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, f := range fields {
		v, err := strconv.ParseFloat(f, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", f)
		}
		out[i] = v
	}
	return out, nil
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lpsolve: "+format+"\n", args...)
	os.Exit(1)
}
