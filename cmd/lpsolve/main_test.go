package main

import (
	"strings"
	"testing"

	"edgealloc/internal/solver/simplex"
)

func TestParseWellFormed(t *testing.T) {
	in := `# a comment
min: 1 2 3
c: 1 1 1 >= 10   # inline comment
c: 1 -1 0 == 2

c: 0 1 2 <= 8
`
	p, err := parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.C) != 3 || p.C[1] != 2 {
		t.Errorf("objective = %v", p.C)
	}
	if len(p.Cons) != 3 {
		t.Fatalf("constraints = %d, want 3", len(p.Cons))
	}
	if p.Cons[0].Sense != simplex.GE || p.Cons[0].RHS != 10 {
		t.Errorf("cons[0] = %+v", p.Cons[0])
	}
	if p.Cons[1].Sense != simplex.EQ {
		t.Errorf("cons[1] sense = %v", p.Cons[1].Sense)
	}
	if p.Cons[2].Sense != simplex.LE || p.Cons[2].Coeffs[2] != 2 {
		t.Errorf("cons[2] = %+v", p.Cons[2])
	}
}

func TestParseSingleEqualsSense(t *testing.T) {
	p, err := parse(strings.NewReader("min: 1\nc: 1 = 5\n"))
	if err != nil {
		t.Fatal(err)
	}
	if p.Cons[0].Sense != simplex.EQ {
		t.Errorf("sense = %v, want EQ", p.Cons[0].Sense)
	}
}

func TestParseErrors(t *testing.T) {
	tests := []struct {
		name, in string
	}{
		{"no objective", "c: 1 >= 2\n"},
		{"bad prefix", "max: 1\n"},
		{"bad sense", "min: 1\nc: 1 >> 2\n"},
		{"bad number", "min: 1 x\n"},
		{"bad rhs", "min: 1\nc: 1 >= ten\n"},
		{"short constraint", "min: 1\nc: >=\n"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := parse(strings.NewReader(tt.in)); err == nil {
				t.Errorf("parse accepted %q", tt.in)
			}
		})
	}
}

func TestParseSolveRoundTrip(t *testing.T) {
	p, err := parse(strings.NewReader("min: 1 1\nc: 1 2 >= 4\nc: 2 1 >= 4\n"))
	if err != nil {
		t.Fatal(err)
	}
	sol, err := simplex.Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != simplex.Optimal {
		t.Fatalf("status %v", sol.Status)
	}
	// Optimum at x = (4/3, 4/3), objective 8/3.
	if diff := sol.Objective - 8.0/3.0; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("objective = %g, want 8/3", sol.Objective)
	}
}
