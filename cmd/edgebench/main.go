// Command edgebench runs the ablation studies that go beyond the paper's
// figures — the value of prediction (lookahead windows), the entropy vs
// quadratic regularization comparison, and the adversarial lower-bound
// probe — plus the solver microbenchmarks that track the performance
// trajectory. See DESIGN.md §7/§8 and EXPERIMENTS.md ("Beyond the paper").
//
// Usage:
//
//	edgebench                      # all ablations at the default scale
//	edgebench -ablation lookahead -users 20 -horizon 12 -reps 2
//	edgebench -workers 4           # bound the experiment worker pool
//	edgebench -benchjson BENCH_solver.json   # dump solver microbenchmarks
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edgealloc/internal/experiments"
	"edgealloc/internal/perf"
)

func main() {
	var (
		ablation = flag.String("ablation", "all",
			"study to run: lookahead, regularizer, adversarial, or 'all'")
		users     = flag.Int("users", 10, "number of mobile users J")
		horizon   = flag.Int("horizon", 8, "number of time slots T")
		reps      = flag.Int("reps", 2, "independent repetitions")
		seed      = flag.Int64("seed", 20140212, "base random seed")
		workers   = flag.Int("workers", 0, "concurrent (row, rep, algorithm) runs (0 = all CPUs); results are identical for any value")
		benchjson = flag.String("benchjson", "",
			"run the solver microbenchmarks and write machine-readable JSON to this file (e.g. BENCH_solver.json), skipping the ablations")
	)
	flag.Parse()

	if *benchjson != "" {
		recs := perf.RunAll()
		perf.WriteTable(os.Stdout, recs)
		f, err := os.Create(*benchjson)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgebench: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := perf.WriteJSON(f, recs); err != nil {
			fmt.Fprintf(os.Stderr, "edgebench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchjson)
		return
	}

	p := experiments.Params{
		Users:   *users,
		Horizon: *horizon,
		Reps:    *reps,
		Seed:    *seed,
		Workers: *workers,
	}
	studies := []string{*ablation}
	if *ablation == "all" {
		studies = []string{"lookahead", "regularizer", "adversarial"}
	}
	for _, s := range studies {
		start := time.Now()
		res, err := experiments.AblationByName(s, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgebench: %v\n", err)
			os.Exit(1)
		}
		res.WriteTable(os.Stdout)
		fmt.Printf("   (%s in %v)\n\n", res.Figure, time.Since(start).Round(time.Millisecond))
	}
}
