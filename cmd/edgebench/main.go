// Command edgebench runs the ablation studies that go beyond the paper's
// figures: the value of prediction (lookahead windows), the entropy vs
// quadratic regularization comparison, and the adversarial lower-bound
// probe. See DESIGN.md §7 and EXPERIMENTS.md ("Beyond the paper").
//
// Usage:
//
//	edgebench                      # all ablations at the default scale
//	edgebench -ablation lookahead -users 20 -horizon 12 -reps 2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"edgealloc/internal/experiments"
)

func main() {
	var (
		ablation = flag.String("ablation", "all",
			"study to run: lookahead, regularizer, adversarial, or 'all'")
		users   = flag.Int("users", 10, "number of mobile users J")
		horizon = flag.Int("horizon", 8, "number of time slots T")
		reps    = flag.Int("reps", 2, "independent repetitions")
		seed    = flag.Int64("seed", 20140212, "base random seed")
	)
	flag.Parse()

	p := experiments.Params{
		Users:   *users,
		Horizon: *horizon,
		Reps:    *reps,
		Seed:    *seed,
	}
	studies := []string{*ablation}
	if *ablation == "all" {
		studies = []string{"lookahead", "regularizer", "adversarial"}
	}
	for _, s := range studies {
		start := time.Now()
		res, err := experiments.AblationByName(s, p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "edgebench: %v\n", err)
			os.Exit(1)
		}
		res.WriteTable(os.Stdout)
		fmt.Printf("   (%s in %v)\n\n", res.Figure, time.Since(start).Round(time.Millisecond))
	}
}
