// Command edgebench runs the ablation studies that go beyond the paper's
// figures — the value of prediction (lookahead windows), the entropy vs
// quadratic regularization comparison, and the adversarial lower-bound
// probe — plus the solver microbenchmarks that track the performance
// trajectory. See DESIGN.md §7/§8 and EXPERIMENTS.md ("Beyond the paper").
//
// Usage:
//
//	edgebench                      # all ablations at the default scale
//	edgebench -ablation lookahead -users 20 -horizon 12 -reps 2
//	edgebench -workers 4           # bound the experiment worker pool
//	edgebench -benchjson BENCH_solver.json   # dump solver microbenchmarks
//	edgebench -benchdiff BENCH_solver.json   # regression gate vs a dump
//	edgebench -cpuprofile cpu.prof ...       # profile any of the above
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"edgealloc/internal/experiments"
	"edgealloc/internal/perf"
	"edgealloc/internal/prof"
)

// regressionThreshold is the ns/op growth beyond which -benchdiff fails.
const regressionThreshold = 0.25

func main() {
	os.Exit(run())
}

func run() int {
	var (
		ablation = flag.String("ablation", "all",
			"study to run: lookahead, regularizer, adversarial, or 'all'")
		users      = flag.Int("users", 10, "number of mobile users J")
		horizon    = flag.Int("horizon", 8, "number of time slots T")
		reps       = flag.Int("reps", 2, "independent repetitions")
		seed       = flag.Int64("seed", 20140212, "base random seed")
		workers    = flag.Int("workers", 0, "concurrent (row, rep, algorithm) runs (0 = all CPUs); results are identical for any value")
		candidates = flag.Int("candidates", 0,
			"per-user candidate-set size for the paper's algorithm in the ablations (0 = full variable space; any value is certified equal to the full solve)")
		fastmath = flag.Bool("fastmath", false,
			"evaluate the paper algorithm's entropy terms with the batch fast-math kernels (costs agree with the exact path to 1e-8; not bitwise-reproducible against it)")
		fastmath32 = flag.Bool("fastmath32", false,
			"with the fast-math kernels, store the ratio scratch in float32 (implies -fastmath)")
		shards = flag.Int("shards", 0,
			"split the paper algorithm's per-slot solve across this many user shards coordinated by consensus ADMM in the ablations (0 = single program; composes with -candidates and -fastmath)")
		shardWkrs = flag.String("shard-workers", "",
			"comma-separated shard-worker base URLs (cmd/edgeshard) to place the ablations' shard blocks on over RPC; dead workers fold back to local solving (requires -shards)")
		incr = flag.Bool("incremental", false,
			"solve the paper algorithm's slots incrementally in the ablations: re-solve only users whose attachment changed, gated by dual feasibility")
		incrTol = flag.Float64("incremental-tol", 0,
			"relative dual-feasibility tolerance of the incremental gate (0 = package default)")
		benchjson = flag.String("benchjson", "",
			"run the solver microbenchmarks and write machine-readable JSON to this file (e.g. BENCH_solver.json), skipping the ablations")
		benchdiff = flag.String("benchdiff", "",
			"run the solver microbenchmarks and compare against this baseline JSON, exiting nonzero if any kernel regressed more than 25% ns/op or grew its allocs/op past the gate")
		scale = flag.Bool("scale", false,
			"include the StepScale/StepSparse/StepShard/StepChurn scaling tier in -benchjson/-benchdiff (adds tens of minutes)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()

	stopProf, err := prof.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "edgebench: %v\n", err)
		return 1
	}
	defer stopProf()

	fail := func(err error) int {
		fmt.Fprintf(os.Stderr, "edgebench: %v\n", err)
		return 1
	}

	if *benchjson != "" && *benchdiff != "" {
		return fail(fmt.Errorf("-benchjson and -benchdiff are mutually exclusive"))
	}

	if *benchjson != "" {
		recs := perf.RunAll(*scale)
		perf.WriteTable(os.Stdout, recs)
		f, err := os.Create(*benchjson)
		if err != nil {
			return fail(err)
		}
		defer f.Close()
		if err := perf.WriteJSON(f, recs); err != nil {
			return fail(err)
		}
		fmt.Printf("wrote %s\n", *benchjson)
		return 0
	}

	if *benchdiff != "" {
		f, err := os.Open(*benchdiff)
		if err != nil {
			return fail(err)
		}
		base, err := perf.ReadJSON(f)
		f.Close()
		if err != nil {
			return fail(err)
		}
		if missing := perf.MissingRecords(base, perf.Specs(true)); len(missing) > 0 {
			return fail(fmt.Errorf("%d kernel(s) have no record in %s: %v — record them with -scale -benchjson",
				len(missing), *benchdiff, missing))
		}
		rows := perf.Diff(base, perf.RunAll(*scale))
		perf.WriteDiffTable(os.Stdout, rows)
		if missing := perf.MissingBaselines(rows); len(missing) > 0 {
			return fail(fmt.Errorf("%d kernel(s) have no baseline in %s: %v — regenerate it with -benchjson",
				len(missing), *benchdiff, missing))
		}
		if regs := perf.Regressions(rows, regressionThreshold); len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "edgebench: %d kernel(s) regressed vs %s (more than %.0f%% ns/op, or allocs/op past the gate)\n",
				len(regs), *benchdiff, 100*regressionThreshold)
			return 1
		}
		fmt.Printf("no kernel regressed vs %s (ns/op within %.0f%%, allocs/op within the gate)\n",
			*benchdiff, 100*regressionThreshold)
		return 0
	}

	p := experiments.Params{
		Users:          *users,
		Horizon:        *horizon,
		Reps:           *reps,
		Seed:           *seed,
		Workers:        *workers,
		Candidates:     *candidates,
		Shards:         *shards,
		ShardWorkers:   splitCSV(*shardWkrs),
		FastMath:       *fastmath,
		FastMathF32:    *fastmath32,
		Incremental:    *incr,
		IncrementalTol: *incrTol,
	}
	studies := []string{*ablation}
	if *ablation == "all" {
		studies = []string{"lookahead", "regularizer", "adversarial"}
	}
	for _, s := range studies {
		start := time.Now()
		res, err := experiments.AblationByName(s, p)
		if err != nil {
			return fail(err)
		}
		res.WriteTable(os.Stdout)
		fmt.Printf("   (%s in %v)\n\n", res.Figure, time.Since(start).Round(time.Millisecond))
	}
	return 0
}

// splitCSV splits a comma-separated flag value into its non-empty,
// whitespace-trimmed items (nil for an empty value).
func splitCSV(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
