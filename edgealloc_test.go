package edgealloc

import (
	"math"
	"testing"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	in, tr, err := RomeScenario(ScenarioConfig{Users: 8, Horizon: 6, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.ChurnRate() <= 0 {
		t.Error("trace has no churn")
	}
	algs := []Algorithm{
		NewOnlineApprox(ApproxOptions{}),
		NewOnlineGreedy(),
		NewPerfOpt(),
		NewOperOpt(),
		NewStatOpt(),
		NewStatic(),
	}
	totals := map[string]float64{}
	for _, alg := range algs {
		run, err := Execute(in, alg)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if run.Total <= 0 {
			t.Errorf("%s: nonpositive total %g", alg.Name(), run.Total)
		}
		totals[alg.Name()] = run.Total
	}
	if len(totals) != 6 {
		t.Fatalf("expected 6 distinct algorithm names, got %d", len(totals))
	}
}

func TestPublicAPICertificateFlow(t *testing.T) {
	in, _, err := RandomWalkScenario(ScenarioConfig{Users: 6, Horizon: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	alg := NewOnlineApproxFor(in, ApproxOptions{})
	sched, err := alg.Run()
	if err != nil {
		t.Fatal(err)
	}
	cert, err := alg.Certificate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := in.Evaluate(sched)
	if err != nil {
		t.Fatal(err)
	}
	total := in.Total(b)
	if cert.LowerBoundP0() > total+1e-6 {
		t.Errorf("certified bound %g above achieved cost %g", cert.LowerBoundP0(), total)
	}
	if cert.Feasibility.Max() > 1e-6 {
		t.Errorf("dual certificate infeasible by %g", cert.Feasibility.Max())
	}
	if bound := RatioBound(in, 1, 1); bound <= 1 {
		t.Errorf("RatioBound = %g, want > 1", bound)
	}
}

func TestPublicAPIToysAndExactOffline(t *testing.T) {
	a := ToyExampleA()
	_, opt, err := ExactOffline(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(opt-9.6) > 1e-6 {
		t.Errorf("exact offline on toy (a) = %g, want 9.6", opt)
	}
	bIn := ToyExampleB()
	_, optB, err := ExactOffline(bIn)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(optB-9.5) > 1e-6 {
		t.Errorf("exact offline on toy (b) = %g, want 9.5", optB)
	}
}

func TestPublicAPIReproduceFigureValidation(t *testing.T) {
	if _, err := ReproduceFigure("7", ExperimentParams{}); err == nil {
		t.Error("accepted unknown figure")
	}
}
