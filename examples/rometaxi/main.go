// Rome taxi scenario: the paper's real-world-style evaluation setting
// (§V-A) end to end.
//
// Taxis move through central Rome and attach to the nearest of 15
// metro-station edge clouds. Operation prices fluctuate every minute
// (Gaussian, base inversely proportional to capacity), migration prices
// follow the three-ISP clusters, and capacity is distributed by observed
// attachment frequency at 80% utilization. The example runs the full
// algorithm roster and prints the per-component cost breakdowns and
// empirical competitive ratios of Figure 2.
//
// Run with: go run ./examples/rometaxi [it takes a minute or two]
package main

import (
	"fmt"
	"log"

	"edgealloc"
)

func main() {
	in, trace, err := edgealloc.RomeScenario(edgealloc.ScenarioConfig{
		Users:   15,
		Horizon: 12,
		Seed:    20140212, // the date of the paper's taxi-trace day
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Rome scenario: %d clouds, %d users, %d slots, churn %.3f, Λ=%.0f\n\n",
		in.I, in.J, in.T, trace.ChurnRate(), in.TotalWorkload())

	// The offline optimum normalizes everything (the paper's denominator).
	offline, err := edgealloc.Execute(in, edgealloc.NewOfflineOpt())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-15s %9s %9s %9s %9s %11s %7s\n",
		"algorithm", "op", "sq", "reconf", "migr", "total", "ratio")
	show := func(name string, run *edgealloc.Run) {
		b := run.Breakdown
		fmt.Printf("%-15s %9.1f %9.1f %9.1f %9.1f %11.1f %7.3f\n",
			name, b.Op, b.Sq, b.Rc, b.Mg, run.Total, run.Total/offline.Total)
	}
	show("offline-opt", offline)

	for _, alg := range []edgealloc.Algorithm{
		edgealloc.NewOnlineApprox(edgealloc.ApproxOptions{}),
		edgealloc.NewOnlineGreedy(),
		edgealloc.NewStatOpt(),
		edgealloc.NewPerfOpt(),
		edgealloc.NewOperOpt(),
		edgealloc.NewStatic(),
	} {
		run, err := edgealloc.Execute(in, alg)
		if err != nil {
			log.Fatal(err)
		}
		show(alg.Name(), run)
	}

	// The certificate bounds the optimum from below without the offline
	// solve — the online algorithm certifies itself.
	alg := edgealloc.NewOnlineApproxFor(in, edgealloc.ApproxOptions{})
	sched, err := alg.Run()
	if err != nil {
		log.Fatal(err)
	}
	cert, err := alg.Certificate()
	if err != nil {
		log.Fatal(err)
	}
	b, err := in.Evaluate(sched)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nself-certificate: achieved %.1f, certified OPT ≥ %.1f → ratio ≤ %.3f"+
		" (dual residual %.2g)\n",
		in.Total(b), cert.LowerBoundP0(), in.Total(b)/cert.LowerBoundP0(),
		cert.Feasibility.Max())
}
