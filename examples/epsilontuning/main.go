// Epsilon tuning (Figure 4): the regularization parameters ε₁ = ε₂ = ε
// trade theoretical worst case against empirical inertia.
//
// Theorem 2's bound r = 1 + γ|I| with
// γ = max_i (C_i+ε)·ln(1+C_i/ε) improves monotonically as ε grows, while
// the empirical ratio dips slightly and then settles — exactly the shape
// of the paper's Figure 4. The example sweeps ε on one scenario and
// prints both curves plus the run's self-certified ratio.
//
// Run with: go run ./examples/epsilontuning [a minute or two]
package main

import (
	"fmt"
	"log"

	"edgealloc"
)

func main() {
	in, _, err := edgealloc.RomeScenario(edgealloc.ScenarioConfig{
		Users:   10,
		Horizon: 10,
		Seed:    4,
	})
	if err != nil {
		log.Fatal(err)
	}
	offline, err := edgealloc.Execute(in, edgealloc.NewOfflineOpt())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %14s %14s %16s\n",
		"epsilon", "empirical", "certified<=", "theorem-2 bound")
	for _, eps := range []float64{1e-3, 1e-2, 1e-1, 1, 1e1, 1e2, 1e3} {
		alg := edgealloc.NewOnlineApproxFor(in, edgealloc.ApproxOptions{
			Epsilon1: eps, Epsilon2: eps,
		})
		sched, err := alg.Run()
		if err != nil {
			log.Fatal(err)
		}
		b, err := in.Evaluate(sched)
		if err != nil {
			log.Fatal(err)
		}
		total := in.Total(b)
		cert, err := alg.Certificate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10.0e %14.3f %14.3f %16.1f\n",
			eps,
			total/offline.Total,
			total/cert.LowerBoundP0(),
			edgealloc.RatioBound(in, eps, eps))
	}
}
