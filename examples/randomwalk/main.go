// Random-walk mobility (§V-D): users ride the Rome metro graph, choosing
// uniformly each minute between staying and moving to an adjacent
// station. The example sweeps the user population, as in Figure 5, and
// shows that the paper's algorithm stays near-optimal while the greedy
// one-shot optimizer drifts.
//
// Run with: go run ./examples/randomwalk [a few minutes]
package main

import (
	"fmt"
	"log"

	"edgealloc"
)

func main() {
	fmt.Printf("%-8s %8s %12s %12s\n", "users", "churn", "approx", "greedy")
	for _, users := range []int{5, 10, 20} {
		in, tr, err := edgealloc.RandomWalkScenario(edgealloc.ScenarioConfig{
			Users:   users,
			Horizon: 10,
			Seed:    int64(1000 + users),
		})
		if err != nil {
			log.Fatal(err)
		}
		offline, err := edgealloc.Execute(in, edgealloc.NewOfflineOpt())
		if err != nil {
			log.Fatal(err)
		}
		approx, err := edgealloc.Execute(in, edgealloc.NewOnlineApprox(edgealloc.ApproxOptions{}))
		if err != nil {
			log.Fatal(err)
		}
		greedy, err := edgealloc.Execute(in, edgealloc.NewOnlineGreedy())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8d %8.3f %12.3f %12.3f\n",
			users, tr.ChurnRate(),
			approx.Total/offline.Total, greedy.Total/offline.Total)
	}
	fmt.Println("\npaper (Fig 5): approx ≈1.1 and flat in the population size;")
	fmt.Println("greedy reaches ≈1.8 at scale.")
}
