// Quickstart: the Figure-1 story of the paper on two toy instances.
//
// Two edge clouds, one unit-workload user, three time slots. Example (a)
// baits the greedy policy into chasing the user back and forth (total
// 11.5 vs the optimal 9.6); example (b) makes greedy too conservative to
// ever migrate (11.3 vs 9.5). The paper's regularization-based online
// algorithm lands near the optimum on both without seeing the future.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"edgealloc"
)

func main() {
	for _, tc := range []struct {
		name string
		inst *edgealloc.Instance
		opt  float64
	}{
		{"example (a) — greedy too aggressive", edgealloc.ToyExampleA(), 9.6},
		{"example (b) — greedy too conservative", edgealloc.ToyExampleB(), 9.5},
	} {
		fmt.Printf("%s\n", tc.name)

		// Ground truth: the exact offline LP optimum.
		_, opt, err := edgealloc.ExactOffline(tc.inst)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  offline optimum:       %6.3f (paper: %.1f)\n", opt, tc.opt)

		// The greedy trap.
		greedy, err := edgealloc.Execute(tc.inst, edgealloc.NewOnlineGreedy())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  online-greedy:         %6.3f (ratio %.3f)\n",
			greedy.Total, greedy.Total/opt)

		// The paper's algorithm, slot by slot, plus its self-certificate.
		alg := edgealloc.NewOnlineApproxFor(tc.inst, edgealloc.ApproxOptions{})
		sched, err := alg.Run()
		if err != nil {
			log.Fatal(err)
		}
		b, err := tc.inst.Evaluate(sched)
		if err != nil {
			log.Fatal(err)
		}
		total := tc.inst.Total(b)
		fmt.Printf("  online-approx:         %6.3f (ratio %.3f)\n", total, total/opt)

		cert, err := alg.Certificate()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  certified lower bound: %6.3f (certified ratio ≤ %.3f)\n",
			cert.LowerBoundP0(), total/cert.LowerBoundP0())
		fmt.Printf("  theorem-2 worst case:  r = %.1f\n\n",
			edgealloc.RatioBound(tc.inst, 1, 1))
	}
}
