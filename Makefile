# Tier-1 verification entry point. `make check` is what CI and every PR
# must keep green: formatting, vet, build, tests, and the race detector
# over the concurrent experiment engine.

GO ?= go

.PHONY: check fmt vet lint build test race bench benchjson bench-diff serve-bench soak dist-soak fuzz cover

check: fmt vet lint build test race

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:" ; echo "$$out" ; exit 1 ; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI pins STATICCHECK_VERSION and runs with
# LINT_STRICT=1 so a missing binary fails the job; locally an absent
# staticcheck degrades to a warning (the repo must build offline).
STATICCHECK_VERSION ?= 2025.1.1

lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif [ "$(LINT_STRICT)" = "1" ]; then \
		echo "lint: staticcheck not on PATH (want $(STATICCHECK_VERSION));" \
		     "go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)" ; \
		exit 1 ; \
	else \
		echo "lint: staticcheck not on PATH; skipping (LINT_STRICT=1 to fail)" ; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The experiment engine runs (case, rep, algorithm) units on a worker
# pool; every test runs under the race detector to keep it honest. The
# detector slows the solver-heavy packages ~10x, so give each package
# more than the 10m default before go test declares a hang.
race:
	$(GO) test -race -timeout 30m ./...

# Differential fuzzing against the paper-conformance oracle (DESIGN.md
# §8). Each target runs for FUZZTIME on top of the committed seed corpora
# under testdata/fuzz; plain `make test` replays the seeds only. go test
# accepts one fuzz target per invocation, hence the loop.
FUZZTIME ?= 30s

fuzz:
	@for target in FuzzOnlineStep FuzzCandidateVsDense FuzzStructuredVsDenseRows FuzzShardVsDense FuzzIncrementalVsFull; do \
		echo "== $$target ($(FUZZTIME)) =="; \
		$(GO) test -run '^$$' -fuzz "^$$target$$" -fuzztime $(FUZZTIME) ./internal/core/ || exit 1; \
	done
	@echo "== FuzzInstanceDecode ($(FUZZTIME)) =="
	@$(GO) test -run '^$$' -fuzz '^FuzzInstanceDecode$$' -fuzztime $(FUZZTIME) ./internal/model/
	@echo "== FuzzFastMathVsStdlib ($(FUZZTIME)) =="
	@$(GO) test -run '^$$' -fuzz '^FuzzFastMathVsStdlib$$' -fuzztime $(FUZZTIME) ./internal/numkernel/
	@echo "== FuzzSnapshotRoundTrip ($(FUZZTIME)) =="
	@$(GO) test -run '^$$' -fuzz '^FuzzSnapshotRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/serve/
	@echo "== FuzzShardRPCCodec ($(FUZZTIME)) =="
	@$(GO) test -run '^$$' -fuzz '^FuzzShardRPCCodec$$' -fuzztime $(FUZZTIME) ./internal/solver/shardrpc/

# Coverage with per-package floors on the guarantee-bearing packages
# (scripts/cover.sh; floors recorded in DESIGN.md §8).
cover:
	./scripts/cover.sh

# Solver microbenchmarks (ns/op, B/op, allocs/op).
bench:
	$(GO) test -run '^$$' -bench . -benchmem ./internal/perf/

# Machine-readable benchmark dump for the perf trajectory, including the
# scaling tier (tens of minutes; drop -scale for the base kernels only).
benchjson:
	$(GO) run ./cmd/edgebench -scale -benchjson BENCH_solver.json

# Regression gate: re-run the kernels and fail if any grew more than 25%
# ns/op or past the allocs/op gate over the committed trajectory, then
# re-run the serve-tier sweep and fail if any latency percentile grew
# more than 50% over BENCH_serve.json. The base kernels only, so it
# stays minutes; run with -scale by hand before refreshing
# BENCH_solver.json after performance-sensitive changes.
bench-diff:
	$(GO) run ./cmd/edgebench -benchdiff BENCH_solver.json
	$(GO) run ./cmd/edgeload -self -benchdiff BENCH_serve.json

# Serve-tier saturation sweep: an in-process edged driven open-loop
# across the committed rate ladder, recording slot-advance latency
# percentiles (p50/p99/p999) per rate into BENCH_serve.json. Refresh it
# after serve-tier performance changes, on quiet hardware.
serve-bench:
	$(GO) run ./cmd/edgeload -self -benchjson BENCH_serve.json

# Race-detector soak of the serving tier: sustained concurrent
# slot-advance / snapshot / TTL-eviction / drain traffic under -race.
# SOAK_ITERS bounds the iteration budget (CI uses a short one).
SOAK_ITERS ?= 3

soak:
	$(GO) test -race -timeout 20m -run 'TestServeSoak' -count $(SOAK_ITERS) ./internal/serve/

# Distributed-shard soak: real edgeshard worker processes behind the
# shardrpc transport, with a kill -9 / restart chaos loop running while
# the race-instrumented TestDistSoak drives full horizons through them
# and pins the result against the in-process reference
# (scripts/dist_soak.sh; log in dist-soak.log).
dist-soak:
	./scripts/dist_soak.sh
